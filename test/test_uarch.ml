(* Tests for the cycle models and the background revoker engine
   (paper 3.3.3, 4). *)

open Cheriot_core
open Cheriot_uarch
module Sram = Cheriot_mem.Sram
module Revbits = Cheriot_mem.Revbits
module Bus = Cheriot_mem.Bus

let heap_base = 0x40000
let heap_size = 0x10000

let make () =
  let sram = Sram.create ~base:heap_base ~size:heap_size in
  let rev = Revbits.create ~heap_base ~heap_size () in
  (sram, rev)

let cap_at addr len =
  Capability.(
    set_bounds (with_address root_mem_rw addr) ~length:len ~exact:true)

let store_cap sram addr c =
  Sram.write_cap sram addr (c.Capability.tag, Capability.to_word c)

let test_sweep_invalidates_stale () =
  let sram, rev = make () in
  (* Two caps in memory: one to a freed object, one to a live object. *)
  let freed = cap_at (heap_base + 0x100) 64 in
  let live = cap_at (heap_base + 0x200) 64 in
  store_cap sram (heap_base + 0x1000) freed;
  store_cap sram (heap_base + 0x1008) live;
  Revbits.paint rev ~addr:(heap_base + 0x100) ~len:64;
  let r = Revoker.create ~core:Core_model.Flute ~sram ~rev () in
  Revoker.kick r ~start:heap_base ~stop:(heap_base + heap_size);
  Alcotest.(check bool) "epoch odd while sweeping" true
    (Revoker.epoch r mod 2 = 1);
  let cycles = Revoker.run_to_completion r in
  Alcotest.(check bool) "epoch even after" true (Revoker.epoch r mod 2 = 0);
  Alcotest.(check int) "one cap invalidated" 1 (Revoker.caps_invalidated r);
  Alcotest.(check bool) "stale tag cleared" false
    (Sram.tag_at sram (heap_base + 0x1000));
  Alcotest.(check bool) "live tag kept" true
    (Sram.tag_at sram (heap_base + 0x1008));
  (* Pipelined 2-stage engine: ~1 word/cycle over the whole heap. *)
  let words = heap_size / 8 in
  Alcotest.(check bool)
    (Printf.sprintf "throughput ~1 word/cycle (%d cycles for %d words)"
       cycles words)
    true
    (cycles < words + 16)

let test_pipelining_ablation () =
  (* The single-stage engine needs ~2 cycles per word (3.3.3). *)
  let sram, rev = make () in
  let r1 = Revoker.create ~pipelined:false ~core:Core_model.Flute ~sram ~rev () in
  Revoker.kick r1 ~start:heap_base ~stop:(heap_base + heap_size);
  let slow = Revoker.run_to_completion r1 in
  let r2 = Revoker.create ~pipelined:true ~core:Core_model.Flute ~sram ~rev () in
  Revoker.kick r2 ~start:heap_base ~stop:(heap_base + heap_size);
  let fast = Revoker.run_to_completion r2 in
  Alcotest.(check bool)
    (Printf.sprintf "2-stage ~2x faster (%d vs %d)" fast slow)
    true
    (float_of_int slow /. float_of_int fast > 1.8)

let test_ibex_bus_slower () =
  let sram, rev = make () in
  let rf = Revoker.create ~core:Core_model.Flute ~sram ~rev () in
  Revoker.kick rf ~start:heap_base ~stop:(heap_base + heap_size);
  let flute = Revoker.run_to_completion rf in
  let ri = Revoker.create ~core:Core_model.Ibex ~sram ~rev () in
  Revoker.kick ri ~start:heap_base ~stop:(heap_base + heap_size);
  let ibex = Revoker.run_to_completion ri in
  Alcotest.(check bool)
    (Printf.sprintf "Ibex 33-bit bus ~2x slower (%d vs %d)" ibex flute)
    true
    (float_of_int ibex /. float_of_int flute > 1.8)

let test_race_snoop () =
  (* Paper 3.3.3's race: revoker loads A, app stores to A, stale word must
     not be written back.  We interleave ticks with a store to the word
     the engine has in flight. *)
  let sram, rev = make () in
  let freed = cap_at (heap_base + 0x100) 64 in
  let slot = heap_base + 0x40 in
  store_cap sram slot freed;
  Revbits.paint rev ~addr:(heap_base + 0x100) ~len:64;
  let r = Revoker.create ~core:Core_model.Flute ~sram ~rev () in
  Revoker.kick r ~start:heap_base ~stop:(heap_base + 0x80);
  (* Tick until the engine has loaded the slot (9th word: 8 ticks in). *)
  for _ = 1 to 9 do
    Revoker.tick r
  done;
  (* Main pipeline overwrites the word with fresh integer data. *)
  Sram.write32 sram slot 0xdeadbeef;
  Sram.write32 sram (slot + 4) 0x12345678;
  Revoker.snoop_store r slot;
  ignore (Revoker.run_to_completion r);
  (* The fresh data must survive: the engine reloaded and found an
     untagged word, so wrote nothing back. *)
  Alcotest.(check int) "fresh low word intact" 0xdeadbeef
    (Sram.read32 sram slot);
  Alcotest.(check int) "fresh high word intact" 0x12345678
    (Sram.read32 sram (slot + 4));
  Alcotest.(check bool) "at least one reload" true (Revoker.race_reloads r >= 1)

(* [tick_n k] must be bit-identical to [k] successive [tick]s — sweep
   results, statistics and epoch transitions — including through bus
   stalls (Ibex's narrow bus inserts them on every word) and a store
   snoop landing at the same granted-cycle offset on both engines. *)
let test_tick_n_equivalence () =
  let mk core =
    let sram, rev = make () in
    let freed = cap_at (heap_base + 0x100) 64 in
    store_cap sram (heap_base + 0x1000) freed;
    store_cap sram (heap_base + 0x40) freed;
    Revbits.paint rev ~addr:(heap_base + 0x100) ~len:64;
    let r = Revoker.create ~core ~sram ~rev () in
    Revoker.kick r ~start:heap_base ~stop:(heap_base + 0x2000);
    (sram, r)
  in
  List.iter
    (fun core ->
      let sram_a, a = mk core and sram_b, b = mk core in
      (* grant the same cycle schedule: singly to [a], batched to [b],
         with a mid-sweep snoop at the same point on both *)
      let grants = [ 1; 7; 3; 64; 1; 1; 128; 513 ] in
      List.iteri
        (fun gi k ->
          for _ = 1 to k do
            Revoker.tick a
          done;
          Revoker.tick_n b k;
          if gi = 3 then begin
            Sram.write32 sram_a (heap_base + 0x40) 0xdeadbeef;
            Sram.write32 sram_b (heap_base + 0x40) 0xdeadbeef;
            Revoker.snoop_store a (heap_base + 0x40);
            Revoker.snoop_store b (heap_base + 0x40)
          end;
          Alcotest.(check bool) "sweeping state equal" (Revoker.sweeping a)
            (Revoker.sweeping b);
          Alcotest.(check int) "words swept equal" (Revoker.words_swept a)
            (Revoker.words_swept b);
          Alcotest.(check int) "busy cycles equal" (Revoker.busy_cycles a)
            (Revoker.busy_cycles b))
        grants;
      ignore (Revoker.run_to_completion a);
      Revoker.tick_n b 1_000_000;
      Alcotest.(check int) "epoch equal" (Revoker.epoch a) (Revoker.epoch b);
      Alcotest.(check int) "caps invalidated equal" (Revoker.caps_invalidated a)
        (Revoker.caps_invalidated b);
      Alcotest.(check int) "race reloads equal" (Revoker.race_reloads a)
        (Revoker.race_reloads b);
      Alcotest.(check bool) "stale tag cleared on both" false
        (Sram.tag_at sram_a (heap_base + 0x1000)
        || Sram.tag_at sram_b (heap_base + 0x1000));
      (* a non-sweeping engine must consume batched grants for free *)
      Revoker.tick_n b 1_000_000;
      Alcotest.(check int) "idle grants cost nothing" (Revoker.busy_cycles a)
        (Revoker.busy_cycles b))
    [ Core_model.Flute; Core_model.Ibex ]

let test_mmio_interface () =
  let sram, rev = make () in
  let freed = cap_at (heap_base + 0x100) 64 in
  store_cap sram (heap_base + 0x800) freed;
  Revbits.paint rev ~addr:(heap_base + 0x100) ~len:64;
  let r = Revoker.create ~core:Core_model.Flute ~sram ~rev () in
  let bus = Bus.create () in
  Bus.add_sram bus sram;
  Revoker.attach r bus ~base:0x1000_0000;
  let reg n = 0x1000_0000 + n in
  Bus.write bus ~width:4 (reg 0) heap_base;
  Bus.write bus ~width:4 (reg 4) (heap_base + 0x1000);
  let epoch0 = Bus.read bus ~width:4 (reg 8) in
  Bus.write bus ~width:4 (reg 12) 1;
  Alcotest.(check int) "epoch bumped by kick" (epoch0 + 1)
    (Bus.read bus ~width:4 (reg 8));
  (* kick while sweeping: no effect *)
  Bus.write bus ~width:4 (reg 12) 1;
  Alcotest.(check int) "double kick ignored" (epoch0 + 1)
    (Bus.read bus ~width:4 (reg 8));
  ignore (Revoker.run_to_completion r);
  Alcotest.(check int) "epoch completed" (epoch0 + 2)
    (Bus.read bus ~width:4 (reg 8));
  Alcotest.(check bool) "stale invalidated" false
    (Sram.tag_at sram (heap_base + 0x800))

let test_bus_snoop_wired () =
  (* Stores through the Bus must reach the engine's snoop. *)
  let sram, rev = make () in
  let bus = Bus.create () in
  Bus.add_sram bus sram;
  let r = Revoker.create ~core:Core_model.Flute ~sram ~rev () in
  Revoker.attach r bus ~base:0x1000_0000;
  Revoker.kick r ~start:heap_base ~stop:(heap_base + 0x100);
  Revoker.tick r;
  Revoker.tick r;
  (* The engine now has words in flight at heap_base and heap_base+8. *)
  Bus.write bus ~width:4 heap_base 42;
  Alcotest.(check bool) "snoop saw the store" true (Revoker.race_reloads r >= 1)

(* --- core model ------------------------------------------------------- *)

let ev insn =
  {
    Cheriot_isa.Machine.ev_insn = Some insn;
    ev_taken_branch = false;
    ev_mem_bytes = 0;
    ev_is_cap_mem = false;
    ev_is_store = false;
    ev_trap = None;
  }

let test_core_model_costs () =
  let flute = Core_model.params_of Flute in
  let ibex = Core_model.params_of Ibex in
  let clc = Cheriot_isa.Insn.Clc (10, 2, 0) in
  let lw =
    Cheriot_isa.Insn.Load { signed = true; width = W; rd = 10; rs1 = 2; off = 0 }
  in
  (* Flute: 64-bit bus, filter free.  Ibex: two beats + visible filter. *)
  let c_flute_off = Core_model.cycles_of_event flute ~load_filter:false (ev clc) in
  let c_flute_on = Core_model.cycles_of_event flute ~load_filter:true (ev clc) in
  Alcotest.(check int) "Flute filter is free" c_flute_off c_flute_on;
  let c_ibex_off = Core_model.cycles_of_event ibex ~load_filter:false (ev clc) in
  let c_ibex_on = Core_model.cycles_of_event ibex ~load_filter:true (ev clc) in
  Alcotest.(check int) "Ibex filter costs one cycle" (c_ibex_off + 1) c_ibex_on;
  let w_ibex = Core_model.cycles_of_event ibex ~load_filter:true (ev lw) in
  Alcotest.(check bool) "Ibex cap load dearer than word load" true
    (c_ibex_on > w_ibex);
  let w_flute = Core_model.cycles_of_event flute ~load_filter:true (ev lw) in
  Alcotest.(check int) "Flute cap load same as word load" w_flute c_flute_on

(* --- Perf dispatch parity --------------------------------------------- *)

(* The cycle model must be blind to the dispatch machinery: Reference,
   Cached and Block runs of the same program charge identical cycles
   and instructions and land in identical machine state.  The program
   mixes the event classes the model prices differently (loads, stores,
   ALU, taken/untaken branches) and ends in a WFI with no interrupt
   source, covering the block path's idle-round charging too. *)
module Machine = Cheriot_isa.Machine
module Asm = Cheriot_isa.Asm
module Insn = Cheriot_isa.Insn

let code_base = 0x1_0000
let data_base = 0x1_8000

let exec_cap base len =
  Capability.set_bounds
    (Capability.with_address Capability.root_executable base)
    ~length:len ~exact:false

let mem_cap base len =
  Capability.set_bounds
    (Capability.with_address Capability.root_mem_rw base)
    ~length:len ~exact:false

let boot_perf program =
  let bus = Bus.create () in
  let sram = Sram.create ~base:code_base ~size:0xA000 in
  Bus.add_sram bus sram;
  let m = Machine.create bus in
  Asm.load (Asm.assemble ~origin:code_base program) sram;
  m.Machine.pcc <- exec_cap code_base 0x400;
  Machine.set_reg m 4 (mem_cap data_base 16);
  m

let parity_program =
  let t0 = Insn.reg_t0 and t1 = Insn.reg_t1 in
  [
    Asm.Label "top";
    Asm.I (Insn.Load { signed = true; width = W; rd = t0; rs1 = 4; off = 0 });
    Asm.I (Insn.Op_imm (Add, t0, t0, 1));
    Asm.I (Insn.Store { width = W; rs2 = t0; rs1 = 4; off = 0 });
    Asm.Li (t1, 10);
    Asm.B (Insn.Lt, t0, t1, "top");
    Asm.I Insn.Wfi;
  ]

let perf_run dispatch program setup =
  let m = boot_perf program in
  setup m;
  let p =
    Perf.create ~dispatch ~params:(Core_model.params_of Core_model.Ibex) m
  in
  let r = Perf.run ~fuel:1_000_000 p in
  (r, p.Perf.stats, m.Machine.mcycle, Machine.state_hash m)

let test_perf_dispatch_parity () =
  let run d = perf_run d parity_program (fun _ -> ()) in
  let r_ref, s_ref, cy_ref, h_ref = run Perf.Reference in
  let r_cached, s_cached, cy_cached, h_cached = run Perf.Cached in
  let r_blk, s_blk, cy_blk, h_blk = run Perf.Block in
  Alcotest.(check bool) "all paths reach the WFI" true
    (r_ref = Machine.Step_waiting
    && r_cached = Machine.Step_waiting
    && r_blk = Machine.Step_waiting);
  Alcotest.(check int) "cycles (cached)" s_ref.Perf.cycles s_cached.Perf.cycles;
  Alcotest.(check int) "cycles (block)" s_ref.Perf.cycles s_blk.Perf.cycles;
  Alcotest.(check int) "mcycle (block)" cy_ref cy_blk;
  Alcotest.(check int) "mcycle (cached)" cy_ref cy_cached;
  Alcotest.(check int) "instructions (cached)" s_ref.Perf.instructions
    s_cached.Perf.instructions;
  Alcotest.(check int) "instructions (block)" s_ref.Perf.instructions
    s_blk.Perf.instructions;
  Alcotest.(check int) "mem_busy (block)" s_ref.Perf.mem_busy
    s_blk.Perf.mem_busy;
  Alcotest.(check string) "state hash (cached)" h_ref h_cached;
  Alcotest.(check string) "state hash (block)" h_ref h_blk;
  (* the block stats really flowed through the harness *)
  Alcotest.(check bool) "block stats threaded" true
    (s_blk.Perf.block_hits > 0 && s_blk.Perf.avg_block_len > 1.0);
  Alcotest.(check int) "no block activity on reference" 0
    (s_ref.Perf.block_hits + s_ref.Perf.block_misses)

(* With interrupts enabled and the timer armed, the block path must
   deliver the timer interrupt at exactly the same cycle as the
   per-step paths (it falls back to per-step dispatch in that regime —
   a mid-block comparator crossing would otherwise be observable). *)
let test_perf_timer_parity () =
  let isr_base = code_base + 0x200 in
  let program =
    [ Asm.Label "spin"; Asm.I (Insn.Op_imm (Add, 5, 5, 1)); Asm.J (0, "spin") ]
  in
  let setup (m : Machine.t) =
    let sram =
      match Bus.sram_at m.Machine.bus ~size:4 isr_base with
      | Some s -> s
      | None -> Alcotest.fail "no sram at isr"
    in
    Asm.load (Asm.assemble ~origin:isr_base [ Asm.I Insn.Ebreak ]) sram;
    Machine.flush_decode_cache m;
    m.Machine.mtcc <- exec_cap isr_base 0x100;
    m.Machine.mtimecmp <- 100;
    m.Machine.mie <- true
  in
  let run d = perf_run d program setup in
  let r_ref, s_ref, cy_ref, h_ref = run Perf.Reference in
  let r_blk, s_blk, cy_blk, h_blk = run Perf.Block in
  Alcotest.(check bool) "both halt in the ISR" true
    (r_ref = Machine.Step_halted && r_blk = Machine.Step_halted);
  Alcotest.(check int) "interrupt delivered at the same cycle" cy_ref cy_blk;
  Alcotest.(check int) "same cycle total" s_ref.Perf.cycles s_blk.Perf.cycles;
  Alcotest.(check int) "same instruction total" s_ref.Perf.instructions
    s_blk.Perf.instructions;
  Alcotest.(check int) "same trap count" s_ref.Perf.traps s_blk.Perf.traps;
  Alcotest.(check string) "same final state" h_ref h_blk

let suite =
  [
    Alcotest.test_case "sweep invalidates stale caps" `Quick
      test_sweep_invalidates_stale;
    Alcotest.test_case "pipelining ablation (1 vs 2 stage)" `Quick
      test_pipelining_ablation;
    Alcotest.test_case "Ibex narrow bus halves sweep rate" `Quick
      test_ibex_bus_slower;
    Alcotest.test_case "store race: snoop forces reload" `Quick
      test_race_snoop;
    Alcotest.test_case "tick_n bit-identical to repeated tick" `Quick
      test_tick_n_equivalence;
    Alcotest.test_case "MMIO start/end/epoch/kick" `Quick test_mmio_interface;
    Alcotest.test_case "bus store snoop wired" `Quick test_bus_snoop_wired;
    Alcotest.test_case "core model costs" `Quick test_core_model_costs;
    Alcotest.test_case "perf harness blind to dispatch path" `Quick
      test_perf_dispatch_parity;
    Alcotest.test_case "timer interrupt cycle-exact under block dispatch"
      `Quick test_perf_timer_parity;
  ]
