(* Tests for the RTOS: the quarantining allocator (paper 5.1), the
   software revoker (3.3.2), the switcher's stack discipline (5.2) and
   the scheduler. *)

open Cheriot_core
module Sram = Cheriot_mem.Sram
module Revbits = Cheriot_mem.Revbits
module Core_model = Cheriot_uarch.Core_model
module Revoker = Cheriot_uarch.Revoker
module Clock = Cheriot_rtos.Clock
module Allocator = Cheriot_rtos.Allocator
module Sw_revoker = Cheriot_rtos.Sw_revoker
module Switcher = Cheriot_rtos.Switcher
module Sched = Cheriot_rtos.Sched

let heap_base = 0x8_0000
let heap_size = 64 * 1024

type sys = {
  alloc : Allocator.t;
  sram : Sram.t;
  rev : Revbits.t;
  clock : Clock.t;
  hw : Revoker.t option;
}

let make ?(temporal = Allocator.Software) ?quarantine_threshold () =
  let clock = Clock.create (Core_model.params_of Core_model.Flute) in
  let sram = Sram.create ~base:heap_base ~size:heap_size in
  let rev = Revbits.create ~heap_base ~heap_size () in
  let alloc =
    Allocator.create ~temporal ?quarantine_threshold ~sram ~rev ~clock
      ~heap_base ~heap_size ()
  in
  let hw =
    match temporal with
    | Allocator.Hardware ->
        let hw = Revoker.create ~core:Core_model.Flute ~sram ~rev () in
        Clock.attach_revoker clock hw;
        Allocator.attach_hw_revoker alloc hw;
        Some hw
    | Allocator.Software ->
        Allocator.set_sw_revoker alloc (Sw_revoker.create ~sram ~rev ~clock ());
        None
    | Allocator.Baseline | Allocator.Metadata -> None
  in
  { alloc; sram; rev; clock; hw }

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "allocator error: %a" Allocator.pp_error e

let check_inv s =
  match Allocator.check_invariants s.alloc with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* --- spatial properties ------------------------------------------------ *)

let test_malloc_bounds () =
  let s = make () in
  let c = ok (Allocator.malloc s.alloc 100) in
  Alcotest.(check bool) "tagged" true c.Capability.tag;
  Alcotest.(check int) "exact length" 100 (Capability.length c);
  Alcotest.(check bool) "global" true (Capability.is_global c);
  Alcotest.(check bool) "no SL" false (Capability.has_perm c SL);
  (* large sizes get representable padding (3.2.3) *)
  let big = ok (Allocator.malloc s.alloc 5000) in
  Alcotest.(check int) "crrl padding" (Bounds.crrl 5000) (Capability.length big);
  Alcotest.(check int) "aligned" 0
    (Capability.base big land ((1 lsl 4) - 1));
  check_inv s

let test_no_overlap () =
  let s = make () in
  let caps = List.init 20 (fun i -> ok (Allocator.malloc s.alloc (16 + (i * 7)))) in
  let ranges = List.map (fun c -> (Capability.base c, Capability.top c)) caps in
  List.iteri
    (fun i (b1, t1) ->
      List.iteri
        (fun j (b2, t2) ->
          if i < j && not (t1 <= b2 || t2 <= b1) then
            Alcotest.failf "allocations overlap: [%x,%x) [%x,%x)" b1 t1 b2 t2)
        ranges)
    ranges;
  check_inv s

(* --- temporal properties ----------------------------------------------- *)

let test_free_paints_and_quarantines () =
  let s = make () in
  let c = ok (Allocator.malloc s.alloc 64) in
  let base = Capability.base c in
  Sram.write32 s.sram base 0xabcd;
  ok (Allocator.free s.alloc c);
  Alcotest.(check bool) "revbit painted" true (Revbits.is_revoked s.rev base);
  Alcotest.(check int) "memory zeroed" 0 (Sram.read32 s.sram base);
  check_inv s

let test_double_free_detected () =
  let s = make () in
  let c = ok (Allocator.malloc s.alloc 64) in
  ok (Allocator.free s.alloc c);
  (match Allocator.free s.alloc c with
  | Error Allocator.Double_free -> ()
  | Ok () -> Alcotest.fail "double free accepted"
  | Error e -> Alcotest.failf "wrong error: %a" Allocator.pp_error e);
  check_inv s

let test_partial_free_rejected () =
  let s = make () in
  let c = ok (Allocator.malloc s.alloc 64) in
  let mid = Capability.incr_address c 16 in
  let mid = Capability.set_bounds mid ~length:8 ~exact:true in
  (match Allocator.free s.alloc mid with
  | Error (Allocator.Invalid_free _ | Allocator.Double_free) ->
      (* a mid-object pointer lands in zeroed data, indistinguishable
         from a dead chunk header: rejected either way *)
      ()
  | Ok () -> Alcotest.fail "partial free accepted"
  | Error e -> Alcotest.failf "wrong error: %a" Allocator.pp_error e);
  (* untagged pointer *)
  (match Allocator.free s.alloc (Capability.clear_tag c) with
  | Error (Allocator.Invalid_free _) -> ()
  | _ -> Alcotest.fail "untagged free accepted");
  check_inv s

let test_no_reuse_before_sweep () =
  (* The core temporal guarantee: memory is reissued only after a full
     revocation cycle, so allocations can never alias quarantined
     memory (5.1). *)
  let s = make ~quarantine_threshold:(48 * 1024) () in
  let c = ok (Allocator.malloc s.alloc 64) in
  let base1 = Capability.base c in
  ok (Allocator.free s.alloc c);
  (* No sweep has run: the same address must not come back. *)
  let c2 = ok (Allocator.malloc s.alloc 64) in
  Alcotest.(check bool) "different memory before sweep" true
    (Capability.base c2 <> base1);
  ok (Allocator.free s.alloc c2);
  (* After an explicit pass, memory may be reused. *)
  Allocator.revoke_now s.alloc;
  let c3 = ok (Allocator.malloc s.alloc 64) in
  Alcotest.(check bool) "reuse allowed after sweep" true
    (Capability.base c3 = base1 || Capability.base c3 = Capability.base c2);
  check_inv s

let test_stale_cap_invalidated_by_sweep () =
  (* UAF elimination end to end: a stale capability stored in memory is
     untagged by the sweep before its referent is reused. *)
  let s = make () in
  let victim = ok (Allocator.malloc s.alloc 64) in
  let slot = heap_base + heap_size - 16 in
  (* Keep a stale copy in an (unrelated, still-allocated) heap slot. *)
  let holder = ok (Allocator.malloc s.alloc 32) in
  let hbase = Capability.base holder in
  Sram.write_cap s.sram hbase (victim.Capability.tag, Capability.to_word victim);
  ok (Allocator.free s.alloc victim);
  Allocator.revoke_now s.alloc;
  Alcotest.(check bool) "stale copy untagged" false (Sram.tag_at s.sram hbase);
  ignore slot;
  check_inv s

let test_stale_cap_outside_heap_invalidated () =
  (* Same guarantee for copies held OUTSIDE the heap — compartment
     globals, spilled stack slots, register save areas.  [revoke_now]
     used to sweep only [heap_base, heap_end), so such a copy kept its
     tag across revocation and the chunk's reuse became a writable
     use-after-free against the allocator's own boundary tags (shaken
     out by the proptest scenario generator). *)
  let clock = Clock.create (Core_model.params_of Core_model.Flute) in
  let sram_base = heap_base - 0x1000 in
  let sram = Sram.create ~base:sram_base ~size:(heap_size + 0x1000) in
  let rev = Revbits.create ~heap_base ~heap_size () in
  let alloc = Allocator.create ~sram ~rev ~clock ~heap_base ~heap_size () in
  Allocator.set_sw_revoker alloc (Sw_revoker.create ~sram ~rev ~clock ());
  let victim = ok (Allocator.malloc alloc 32) in
  let global = sram_base + 0x100 in
  Sram.write_cap sram global (victim.Capability.tag, Capability.to_word victim);
  ok (Allocator.free alloc victim);
  Allocator.revoke_now alloc;
  Alcotest.(check bool) "stale out-of-heap copy untagged" false
    (Sram.tag_at sram global);
  match Allocator.check_invariants alloc with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_oom_triggers_revocation () =
  let s = make ~quarantine_threshold:(1024 * 1024) () in
  (* Threshold never fires; exhaustion must force a pass + retry. *)
  let big = (heap_size / 2) + 1024 in
  let a = ok (Allocator.malloc s.alloc big) in
  ok (Allocator.free s.alloc a);
  let b = ok (Allocator.malloc s.alloc big) in
  Alcotest.(check bool) "second big alloc succeeded" true b.Capability.tag;
  Alcotest.(check int) "one sweep" 1 (Allocator.stats s.alloc).Allocator.sweeps;
  check_inv s

let test_hardware_path () =
  let s = make ~temporal:Allocator.Hardware () in
  let c = ok (Allocator.malloc s.alloc 128) in
  ok (Allocator.free s.alloc c);
  Allocator.revoke_now s.alloc;
  Alcotest.(check bool) "hw epoch advanced (even)" true
    (Allocator.epoch s.alloc mod 2 = 0 && Allocator.epoch s.alloc > 0);
  let c2 = ok (Allocator.malloc s.alloc 128) in
  Alcotest.(check bool) "alloc after hw sweep" true c2.Capability.tag;
  check_inv s

let test_baseline_vulnerable_by_design () =
  (* The baseline config reproduces the classic UAF: memory is reused
     while stale pointers still work (the threat the paper eliminates). *)
  let s = make ~temporal:Allocator.Baseline () in
  let c = ok (Allocator.malloc s.alloc 64) in
  let base1 = Capability.base c in
  ok (Allocator.free s.alloc c);
  let c2 = ok (Allocator.malloc s.alloc 64) in
  Alcotest.(check int) "memory reused immediately" base1 (Capability.base c2);
  Alcotest.(check bool) "stale cap still tagged" true c.Capability.tag

(* qcheck: random alloc/free interleavings keep all invariants. *)
let prop_random_traffic =
  QCheck.Test.make ~name:"random alloc/free traffic keeps heap invariants"
    ~count:60
    QCheck.(
      make
        ~print:(fun ops ->
          String.concat ","
            (List.map (fun (a, s) -> Printf.sprintf "%b/%d" a s) ops))
        Gen.(list_size (int_bound 120) (pair bool (int_bound 2000))))
    (fun ops ->
      let s = make ~quarantine_threshold:(16 * 1024) () in
      let live = ref [] in
      List.iter
        (fun (do_alloc, size) ->
          if do_alloc || !live = [] then (
            match Allocator.malloc s.alloc (max 1 size) with
            | Ok c -> live := c :: !live
            | Error Allocator.Out_of_memory -> ()
            | Error e ->
                Alcotest.failf "malloc: %a" Allocator.pp_error e)
          else
            match !live with
            | c :: rest ->
                live := rest;
                (match Allocator.free s.alloc c with
                | Ok () -> ()
                | Error e -> Alcotest.failf "free: %a" Allocator.pp_error e)
            | [] -> ())
        ops;
      (match Allocator.check_invariants s.alloc with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      (* every live cap still dereferences: its revbit must be clear *)
      List.for_all
        (fun c -> not (Revbits.is_revoked s.rev (Capability.base c)))
        !live)

(* --- switcher ----------------------------------------------------------- *)

let test_switcher_zeroing () =
  let clock = Clock.create (Core_model.params_of Core_model.Flute) in
  let sram = Sram.create ~base:0x1000 ~size:2048 in
  let sw = Switcher.create ~hwm_enabled:false ~sram clock in
  let stack = Switcher.make_stack ~base:0x1000 ~size:1024 in
  (* Caller leaves a secret below SP (a stale local), then calls. *)
  stack.Switcher.sp <- 0x1000 + 512;
  stack.Switcher.hwm <- 0x1000 + 256;
  Sram.write32 sram (0x1000 + 300) 0xdeadbeef;
  let observed = ref (-1) in
  Switcher.cross_call sw stack ~callee_frame:64 ~callee_stack_use:128
    (fun () -> observed := Sram.read32 sram (0x1000 + 300));
  Alcotest.(check int) "callee sees zeroed stack" 0 !observed;
  Alcotest.(check int) "sp restored" (0x1000 + 512) stack.Switcher.sp

let test_switcher_hwm_less_zeroing () =
  let run hwm_enabled =
    let clock = Clock.create (Core_model.params_of Core_model.Flute) in
    let sram = Sram.create ~base:0x1000 ~size:2048 in
    let sw = Switcher.create ~hwm_enabled ~sram clock in
    let stack = Switcher.make_stack ~base:0x1000 ~size:1024 in
    stack.Switcher.sp <- 0x1000 + 900;
    stack.Switcher.hwm <- 0x1000 + 900;
    for _ = 1 to 10 do
      Switcher.cross_call sw stack ~callee_frame:64 ~callee_stack_use:64
        (fun () -> ())
    done;
    (Switcher.bytes_zeroed sw, Clock.cycles clock)
  in
  let z_no, c_no = run false in
  let z_hwm, c_hwm = run true in
  Alcotest.(check bool)
    (Printf.sprintf "hwm zeroes less (%d < %d)" z_hwm z_no)
    true (z_hwm < z_no / 4);
  Alcotest.(check bool) "hwm cheaper" true (c_hwm < c_no)

(* --- software revoker batching ------------------------------------------ *)

let test_sw_revoker_preemptable () =
  let clock = Clock.create (Core_model.params_of Core_model.Flute) in
  let sram = Sram.create ~base:heap_base ~size:heap_size in
  let rev = Revbits.create ~heap_base ~heap_size () in
  let sw = Sw_revoker.create ~batch_granules:64 ~sram ~rev ~clock () in
  let batches = ref 0 in
  Sw_revoker.sweep sw
    ~on_batch_end:(fun () -> incr batches)
    ~start:heap_base ~stop:(heap_base + heap_size);
  Alcotest.(check int) "preemption points" (heap_size / 8 / 64) !batches;
  Alcotest.(check int) "epoch advanced twice" 2 (Sw_revoker.epoch sw)

(* --- scheduler ------------------------------------------------------------ *)

let test_sched_priorities () =
  let clock = Clock.create (Core_model.params_of Core_model.Ibex) in
  let sched = Sched.create ~hwm_enabled:false clock in
  let stack () = Switcher.make_stack ~base:0x1000 ~size:512 in
  let lo = Sched.spawn sched ~name:"lo" ~priority:1 ~stack:(stack ()) in
  let hi = Sched.spawn sched ~name:"hi" ~priority:5 ~stack:(stack ()) in
  (match Sched.pick sched with
  | Some th -> Alcotest.(check string) "highest priority wins" "hi" th.Sched.tname
  | None -> Alcotest.fail "no thread");
  Sched.switch_to sched hi;
  Sched.sleep_until hi (Clock.cycles clock + 1000);
  (match Sched.pick sched with
  | Some th -> Alcotest.(check string) "lower runs when hi sleeps" "lo" th.Sched.tname
  | None -> Alcotest.fail "no thread");
  Sched.switch_to sched lo;
  Sched.sleep_until lo (Clock.cycles clock + 5000);
  Alcotest.(check bool) "idles to next wake" true (Sched.idle_to_next_wake sched);
  Alcotest.(check bool) "hi awake again" true (hi.Sched.tstate = Sched.Ready);
  Alcotest.(check bool) "idle time accounted" true (Sched.idle_cycles sched > 0)

let test_sched_ctx_cost_hwm () =
  let clock = Clock.create (Core_model.params_of Core_model.Ibex) in
  let plain = Sched.create ~hwm_enabled:false clock in
  let hwm = Sched.create ~hwm_enabled:true clock in
  Alcotest.(check int) "two extra CSRs cost 4 cycles"
    (Sched.ctx_switch_cost plain + 4)
    (Sched.ctx_switch_cost hwm)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "malloc bounds exact + representable" `Quick
      test_malloc_bounds;
    Alcotest.test_case "allocations never overlap" `Quick test_no_overlap;
    Alcotest.test_case "free paints, zeroes, quarantines" `Quick
      test_free_paints_and_quarantines;
    Alcotest.test_case "double free detected" `Quick test_double_free_detected;
    Alcotest.test_case "partial/untagged free rejected" `Quick
      test_partial_free_rejected;
    Alcotest.test_case "no reuse before sweep" `Quick test_no_reuse_before_sweep;
    Alcotest.test_case "sweep invalidates stale caps" `Quick
      test_stale_cap_invalidated_by_sweep;
    Alcotest.test_case "sweep reaches caps outside the heap" `Quick
      test_stale_cap_outside_heap_invalidated;
    Alcotest.test_case "exhaustion forces a pass" `Quick
      test_oom_triggers_revocation;
    Alcotest.test_case "hardware revoker path" `Quick test_hardware_path;
    Alcotest.test_case "baseline reproduces classic UAF" `Quick
      test_baseline_vulnerable_by_design;
    Alcotest.test_case "switcher zeroes delegated stack" `Quick
      test_switcher_zeroing;
    Alcotest.test_case "HWM shrinks zeroing" `Quick
      test_switcher_hwm_less_zeroing;
    Alcotest.test_case "software revoker batches" `Quick
      test_sw_revoker_preemptable;
    Alcotest.test_case "scheduler priorities + sleep" `Quick
      test_sched_priorities;
    Alcotest.test_case "context switch cost of HWM CSRs" `Quick
      test_sched_ctx_cost_hwm;
    q prop_random_traffic;
  ]
