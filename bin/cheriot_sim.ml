(* cheriot_sim: a command-line driver for the simulator.

   Subcommands:
     coremark   run the CoreMark-shaped suite on a chosen configuration
     alloc      run the allocation microbenchmark for one configuration
     iot        run the end-to-end IoT application
     demo       run a built-in demo program on the emulator with a trace

   Examples:
     cheriot_sim coremark --core ibex --cheri --load-filter
     cheriot_sim alloc --core flute --temporal hardware --hwm --size 1024
     cheriot_sim iot --seconds 10
     cheriot_sim demo --trace                                            *)

open Cmdliner
module Core_model = Cheriot_uarch.Core_model

let core_arg =
  let core =
    Arg.enum [ ("flute", Core_model.Flute); ("ibex", Core_model.Ibex) ]
  in
  Arg.(value & opt core Core_model.Ibex & info [ "core" ] ~doc:"flute or ibex")

(* --- coremark ---------------------------------------------------------- *)

let coremark core cheri load_filter iterations =
  Cheriot_workloads.Coremark.calibrate ();
  let r =
    Cheriot_workloads.Coremark.run ~iterations
      (Core_model.config ~cheri ~load_filter core)
  in
  Format.printf "%s %s%s: score %.3f, %d cycles, %d instructions, checksum 0x%x@."
    (Core_model.name core)
    (if cheri then "CHERIoT" else "RV32E")
    (if cheri && load_filter then "+filter" else "")
    r.Cheriot_workloads.Coremark.score r.cycles r.instructions r.checksum

let coremark_cmd =
  let cheri = Arg.(value & flag & info [ "cheri" ] ~doc:"capability build") in
  let filt =
    Arg.(value & flag & info [ "load-filter" ] ~doc:"enable the load filter")
  in
  let iters =
    Arg.(value & opt int 10 & info [ "iterations" ] ~doc:"iterations")
  in
  Cmd.v
    (Cmd.info "coremark" ~doc:"run the CoreMark-shaped suite (Table 3)")
    Term.(const coremark $ core_arg $ cheri $ filt $ iters)

(* --- alloc ------------------------------------------------------------- *)

let alloc core temporal hwm size total =
  let r =
    Cheriot_workloads.Alloc_bench.run ~total
      { Cheriot_workloads.Alloc_bench.core; temporal; hwm }
      ~size
  in
  Format.printf
    "%s: %d cycles for %d bytes in %d-byte allocations (%d iterations, %d \
     sweeps, %d cycles revoking, %d bytes of stack zeroed)@."
    (Cheriot_workloads.Alloc_bench.config_name
       { Cheriot_workloads.Alloc_bench.core; temporal; hwm })
    r.Cheriot_workloads.Alloc_bench.cycles total size r.iterations r.sweeps
    r.sweep_cycles r.bytes_zeroed

let alloc_cmd =
  let temporal =
    let t =
      Arg.enum
        [
          ("baseline", Cheriot_rtos.Allocator.Baseline);
          ("metadata", Cheriot_rtos.Allocator.Metadata);
          ("software", Cheriot_rtos.Allocator.Software);
          ("hardware", Cheriot_rtos.Allocator.Hardware);
        ]
    in
    Arg.(
      value
      & opt t Cheriot_rtos.Allocator.Hardware
      & info [ "temporal" ] ~doc:"baseline|metadata|software|hardware")
  in
  let hwm =
    Arg.(value & flag & info [ "hwm" ] ~doc:"stack high-water mark assist")
  in
  let size = Arg.(value & opt int 1024 & info [ "size" ] ~doc:"allocation size") in
  let total =
    Arg.(value & opt int (1 lsl 20) & info [ "total" ] ~doc:"bytes of churn")
  in
  Cmd.v
    (Cmd.info "alloc" ~doc:"run the allocation microbenchmark (Table 4)")
    Term.(const alloc $ core_arg $ temporal $ hwm $ size $ total)

(* --- iot --------------------------------------------------------------- *)

let iot seconds =
  let r = Cheriot_workloads.Iot_app.run ~seconds () in
  Format.printf
    "CPU load %.1f%% over %.1fs; %d packets, %d JS frames, %d allocations, \
     %d sweeps@."
    r.Cheriot_workloads.Iot_app.cpu_load_percent r.seconds r.packets
    r.js_ticks r.allocations r.sweeps

let iot_cmd =
  let seconds =
    Arg.(value & opt float 10.0 & info [ "seconds" ] ~doc:"simulated seconds")
  in
  Cmd.v
    (Cmd.info "iot" ~doc:"run the end-to-end IoT application (7.2.3)")
    Term.(const iot $ seconds)

(* --- demo -------------------------------------------------------------- *)

let demo trace dispatch =
  (* The two-compartment demo image from {!Cheriot_workloads.Firmware}
     (app calls svc.double through the switcher), with optional
     instruction tracing. *)
  let open Cheriot_isa in
  let t = Cheriot_workloads.Firmware.demo () in
  let m = t.Cheriot_rtos.Loader.machine in
  let result, steps =
    if trace then
      Trace.run m ~fuel:10_000 ~dispatch ~f:(fun e ->
          Format.printf "%a@." Trace.pp_entry e)
    else Machine.run ~fuel:10_000 ~dispatch m
  in
  (match result with
  | Machine.Step_halted ->
      Format.printf
        "halted after %d instructions; app received %d from the svc \
         compartment@."
        steps
        (Machine.reg_int m Insn.reg_a0)
  | _ -> Format.printf "did not halt cleanly@.");
  ()

let demo_cmd =
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"print every instruction")
  in
  let dispatch =
    let d =
      Arg.enum
        [
          ("ref", Cheriot_isa.Machine.Dispatch_ref);
          ("cached", Cheriot_isa.Machine.Dispatch_cached);
          ("block", Cheriot_isa.Machine.Dispatch_block);
          ("chain", Cheriot_isa.Machine.Dispatch_chain);
          ("jit", Cheriot_isa.Machine.Dispatch_jit);
        ]
    in
    Arg.(
      value
      & opt d Cheriot_isa.Machine.Dispatch_ref
      & info [ "dispatch" ]
          ~doc:
            "execution machinery: ref (re-decode every step), cached \
             (decoded-instruction cache), block (basic-block \
             translation cache), chain (chained blocks with \
             trace-driven superblocks; traced transfers are marked \
             [chain] / [side-exit]), or jit (chained blocks running \
             optimized check plans; traced transfers are marked [jit], \
             guard deoptimizations [opt-side-exit])")
  in
  Cmd.v
    (Cmd.info "demo"
       ~doc:"run a two-compartment demo through the machine-code switcher")
    Term.(const demo $ trace $ dispatch)

let () =
  let info =
    Cmd.info "cheriot_sim" ~version:"1.0"
      ~doc:"CHERIoT simulator driver (MICRO 2023 reproduction)"
  in
  exit (Cmd.eval (Cmd.group info [ coremark_cmd; alloc_cmd; iot_cmd; demo_cmd ]))
