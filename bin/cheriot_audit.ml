(* Static firmware auditor driver (the CLI face of {!Cheriot_analysis.Driver}).

   Subcommands:

     shipped [NAME]   audit every image in Firmware.shipped (or just
                      NAME); print the JSON findings report
     corpus           audit the deliberately-bad corpus; each image must
                      yield findings for exactly its expected rule
     all              both of the above (the `make audit` CI gate)
     plans [NAME]     run each shipped image under the jit tier (or
                      --dispatch block|chain|jit), statically verify
                      every compiled check plan sound, then refute the
                      seeded optimizer mutants (the `make verify-plans`
                      CI gate); same JSON report shape
     incremental [NAME]  prime the summary cache, patch one compartment
                      and re-audit warm: exits 0 only when the warm
                      report is byte-identical to a from-scratch audit
                      and every untouched compartment's summary was
                      reused (the `make audit-incremental` CI gate)
     rules            list the rule catalogue (image + plan rules)

   All image-auditing subcommands accept `--rule ID` to restrict the
   report (shipped, plans) or the corpus selection to one rule.

   Exit codes: 0 clean; 1 findings / corpus failure; 2 analysis error,
   unknown image or unknown rule.

   JSON schema (see README):
     { "images": [ { "image": <name>,
                     "findings": [ { "rule": <id>, "compartment": <name>,
                                     "pc": <int, optional>,
                                     "detail": <string> } ] } ],
       "total_findings": <int> }                                        *)

open Cmdliner
module Driver = Cheriot_analysis.Driver
module Firmware = Cheriot_workloads.Firmware

let rule_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "rule" ] ~docv:"ID" ~doc:"Restrict to findings for rule $(docv).")

let name_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"IMAGE" ~doc:"Audit only this shipped image.")

let () =
  let info =
    Cmd.info "cheriot_audit" ~version:"1.0"
      ~doc:"static auditor for linked CHERIoT firmware images"
  in
  let shipped =
    Cmd.v
      (Cmd.info "shipped" ~doc:"audit the shipped firmware images")
      Term.(
        const (fun name rule ->
            Driver.shipped ~images:Firmware.shipped ?name ?rule ())
        $ name_arg $ rule_arg)
  in
  let corpus =
    Cmd.v
      (Cmd.info "corpus" ~doc:"audit the deliberately-bad corpus")
      Term.(const (fun rule -> Driver.corpus ?rule ()) $ rule_arg)
  in
  let all =
    Cmd.v
      (Cmd.info "all" ~doc:"shipped + corpus (the CI gate)")
      Term.(
        const (fun rule -> Driver.all ~images:Firmware.shipped ?rule ())
        $ rule_arg)
  in
  let plans =
    let dispatch_arg =
      Arg.(
        value
        & opt
            (enum
               [
                 ("block", Cheriot_isa.Machine.Dispatch_block);
                 ("chain", Cheriot_isa.Machine.Dispatch_chain);
                 ("jit", Cheriot_isa.Machine.Dispatch_jit);
               ])
            Cheriot_isa.Machine.Dispatch_jit
        & info [ "dispatch" ] ~docv:"TIER"
            ~doc:"Translation tier to collect plans under (default jit).")
    in
    Cmd.v
      (Cmd.info "plans"
         ~doc:"verify every compiled check plan sound; refute the mutants")
      Term.(
        const (fun name dispatch rule ->
            Driver.plans_all ~images:Firmware.shipped ?name ~dispatch ?rule ())
        $ name_arg $ dispatch_arg $ rule_arg)
  in
  let incremental =
    Cmd.v
      (Cmd.info "incremental"
         ~doc:
           "re-audit patched images through the summary cache; fail unless \
            warm reports match cold byte-for-byte")
      Term.(
        const (fun name -> Driver.incremental ~images:Firmware.shipped ?name ())
        $ name_arg)
  in
  let rules =
    Cmd.v
      (Cmd.info "rules" ~doc:"list the rule catalogue")
      Term.(const Driver.rules $ const ())
  in
  exit
    (Cmd.eval'
       (Cmd.group info [ shipped; corpus; all; plans; incremental; rules ]))
