(* Static firmware auditor driver.

   Subcommands:

     shipped   audit every image in Firmware.shipped; print the JSON
               findings report; exit 1 if any finding
     corpus    audit the deliberately-bad corpus; each image must yield
               findings for exactly its expected rule; exit 1 on any
               false negative or false positive
     all       both of the above (the `make audit` CI gate)
     rules     list the rule catalogue

   JSON schema (see README):
     { "images": [ { "image": <name>,
                     "findings": [ { "rule": <id>, "compartment": <name>,
                                     "pc": <int, optional>,
                                     "detail": <string> } ] } ],
       "total_findings": <int> }                                        *)

open Cmdliner
module Rules = Cheriot_analysis.Rules
module Audit = Cheriot_analysis.Audit
module Corpus = Cheriot_analysis.Corpus
module Firmware = Cheriot_workloads.Firmware

let audit_shipped () =
  let report =
    List.map (fun (name, build) -> (name, Audit.run (build ()))) Firmware.shipped
  in
  print_endline (Rules.report_to_json report);
  let total = List.fold_left (fun a (_, fs) -> a + List.length fs) 0 report in
  if total = 0 then begin
    Printf.eprintf "shipped: %d images clean\n%!" (List.length report);
    0
  end
  else begin
    Printf.eprintf "shipped: %d findings on shipped images\n%!" total;
    1
  end

let audit_corpus () =
  let failures = ref 0 in
  List.iter
    (fun (e : Corpus.entry) ->
      let findings = Audit.run (e.Corpus.build ()) in
      let hit =
        List.exists (fun (f : Rules.finding) -> f.Rules.rule = e.Corpus.rule)
          findings
      in
      let spurious =
        List.filter (fun (f : Rules.finding) -> f.Rules.rule <> e.Corpus.rule)
          findings
      in
      if hit && spurious = [] then
        Printf.eprintf "corpus: PASS %-26s -> %s\n%!" e.Corpus.name
          e.Corpus.rule
      else begin
        incr failures;
        Printf.eprintf "corpus: FAIL %-26s expected %s\n%!" e.Corpus.name
          e.Corpus.rule;
        if not hit then Printf.eprintf "         missed (false negative)\n%!";
        List.iter
          (fun f ->
            Printf.eprintf "         spurious: %s\n%!"
              (Format.asprintf "%a" Rules.pp_finding f))
          spurious
      end)
    Corpus.entries;
  if !failures = 0 then begin
    Printf.eprintf "corpus: %d/%d images detected exactly\n%!"
      (List.length Corpus.entries)
      (List.length Corpus.entries);
    0
  end
  else 1

let list_rules () =
  List.iter (fun (id, doc) -> Printf.printf "%-26s %s\n" id doc) Rules.catalogue;
  0

let cmd name doc f = Cmd.v (Cmd.info name ~doc) Term.(const f $ const ())

let () =
  let info =
    Cmd.info "cheriot_audit" ~version:"1.0"
      ~doc:"static auditor for linked CHERIoT firmware images"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            cmd "shipped" "audit the shipped firmware images" audit_shipped;
            cmd "corpus" "audit the deliberately-bad corpus" audit_corpus;
            cmd "all" "shipped + corpus (the CI gate)" (fun () ->
                let a = audit_shipped () in
                let b = audit_corpus () in
                if a + b = 0 then 0 else 1);
            cmd "rules" "list the rule catalogue" list_rules;
          ]))
